package workload

import "math/rand"

// This file holds the adversarial/scenario-diversity families: trace-driven
// replay of Darshan-style per-file access summaries and a multi-tenant mix
// of interfering streams with time-varying roles. Both are registered in
// the catalog, so Known/Validate/fuzzing cover them like the synthetic
// benchmark families.

// TraceFile is the per-file access summary a trace replay is generated
// from: counters in the shape Darshan reports per record (the darshan
// package converts its parsed logs into this form; workload deliberately
// does not import darshan — the dependency runs the other way).
type TraceFile struct {
	Reads, Writes  int64 // operation counts across all trace processes
	Stats, Unlinks int64
	BytesRead      int64
	BytesWritten   int64
	SeqReads       int64 // reads continuing the previous offset
	SeqWrites      int64
	Shared         bool // accessed by more than one process in the trace
}

// TraceSpec is a whole parsed trace: the process count it was captured
// with plus one summary per file record. Replay re-casts it onto any rank
// count and scale.
type TraceSpec struct {
	Name  string
	Procs int
	Files []TraceFile
}

// Replay generates an op-stream workload reproducing the trace's per-file
// access shape: write volume, read volume, sequentiality split, sharing,
// and metadata pressure. Counts are normalised from the trace's process
// count onto ranks and scaled with the usual floor-of-one rule; offsets for
// the non-sequential fraction come from a per-file seeded rng so the
// generated stream is a pure function of (spec, ranks, scale).
func Replay(spec TraceSpec, ranks int, scale float64) *Workload {
	name := spec.Name
	if name == "" {
		name = "replay"
	}
	b := newBuilder(name, "POSIX", ranks, scale)
	dir := b.addDir()
	procs := spec.Procs
	if procs < 1 {
		procs = 1
	}

	type replayFile struct {
		id           int32
		tf           TraceFile
		writers      []int // participating ranks for writes/creates
		readers      []int // participating ranks for reads
		perW, perR   int   // scaled per-participant op counts
		wSize, rSize int64 // per-op transfer sizes
		span         int64 // written extent, bounds random read offsets
	}
	files := make([]replayFile, 0, len(spec.Files))
	all := make([]int, ranks)
	for r := range all {
		all[r] = r
	}
	perOp := func(total int64, parts int) int {
		if total <= 0 {
			return 0
		}
		per := int((total + int64(parts) - 1) / int64(parts))
		return scaleCount(per, scale)
	}
	opSize := func(bytes, ops int64) int64 {
		if ops <= 0 {
			return 0
		}
		sz := bytes / ops
		if sz < 1 {
			sz = 1
		}
		return sz
	}
	for i, tf := range spec.Files {
		rf := replayFile{id: b.addFile(dir, tf.Shared), tf: tf}
		// Counts are normalised per trace process: a shared record's total
		// divides across the trace's procs and every replay rank issues that
		// per-proc share; a private record keeps its full count on one rank.
		parts := 1
		if tf.Shared {
			rf.writers, rf.readers = all, all
			parts = procs
		} else {
			owner := []int{i % ranks}
			rf.writers, rf.readers = owner, owner
		}
		rf.perW = perOp(tf.Writes, parts)
		rf.perR = perOp(tf.Reads, parts)
		rf.wSize = opSize(tf.BytesWritten, tf.Writes)
		rf.rSize = opSize(tf.BytesRead, tf.Reads)
		rf.span = int64(len(rf.writers)) * int64(rf.perW) * rf.wSize
		files = append(files, rf)
	}

	seqSplit := func(seq, total int64, n int) int {
		if total <= 0 {
			return 0
		}
		return int(int64(n) * seq / total)
	}

	b.phase("replay-write")
	for fi, rf := range files {
		if rf.perW == 0 {
			continue
		}
		// Per-file seed derived from the file index: offsets reproduce
		// identically per file regardless of file iteration order.
		rng := rand.New(rand.NewSource(int64(fi)*7919 + 11))
		nSeq := seqSplit(rf.tf.SeqWrites, rf.tf.Writes, rf.perW)
		for wi, r := range rf.writers {
			b.op(r, Op{Type: OpCreate, File: rf.id, Dir: dir, Index: int32(fi)})
			base := int64(wi) * int64(rf.perW) * rf.wSize
			for k := 0; k < rf.perW; k++ {
				off := base + int64(k)*rf.wSize
				if k >= nSeq {
					off = rng.Int63n(int64(rf.perW)*int64(len(rf.writers))) * rf.wSize
				}
				b.op(r, Op{Type: OpWrite, File: rf.id, Offset: off, Size: rf.wSize})
			}
			b.op(r, Op{Type: OpFsync, File: rf.id})
			b.op(r, Op{Type: OpClose, File: rf.id})
		}
	}
	b.barrier()

	b.phase("replay-read")
	for fi, rf := range files {
		if rf.perR == 0 {
			continue
		}
		// Per-file seed, distinct stream from the write phase above.
		rng := rand.New(rand.NewSource(int64(fi)*7919 + 13))
		nSeq := seqSplit(rf.tf.SeqReads, rf.tf.Reads, rf.perR)
		span := rf.span
		if span < rf.rSize {
			span = rf.rSize * int64(rf.perR)
		}
		chunks := span / rf.rSize
		if chunks < 1 {
			chunks = 1
		}
		for ri, r := range rf.readers {
			b.op(r, Op{Type: OpOpen, File: rf.id, Dir: dir, Index: int32(fi)})
			base := (int64(ri) * int64(rf.perR) * rf.rSize) % span
			for k := 0; k < rf.perR; k++ {
				off := (base + int64(k)*rf.rSize) % span
				if k >= nSeq {
					off = rng.Int63n(chunks) * rf.rSize
				}
				b.op(r, Op{Type: OpRead, File: rf.id, Offset: off, Size: rf.rSize})
			}
			b.op(r, Op{Type: OpClose, File: rf.id})
		}
	}
	b.barrier()

	b.phase("replay-meta")
	for fi, rf := range files {
		if rf.tf.Stats > 0 {
			parts := 1
			if rf.tf.Shared {
				parts = procs
			}
			per := perOp(rf.tf.Stats, parts)
			for _, r := range rf.readers {
				for k := 0; k < per; k++ {
					b.op(r, Op{Type: OpStat, File: rf.id, Dir: dir, Index: int32(fi)})
				}
			}
		}
		if rf.tf.Unlinks > 0 {
			b.op(rf.writers[0], Op{Type: OpUnlink, File: rf.id, Dir: dir, Index: int32(fi)})
		}
	}
	b.barrier()
	return b.w
}

// CanonicalTrace is the built-in trace behind the darshan-replay catalog
// family: a checkpoint-style shared sequential file, a shared random-access
// file, and a tail of per-process small files with metadata churn —
// distilled from the collector's view of the paper's IOR + MDWorkbench
// mix so the family needs no trace file on disk.
func CanonicalTrace() TraceSpec {
	spec := TraceSpec{Name: "darshan-replay", Procs: 50}
	spec.Files = append(spec.Files, TraceFile{
		Writes: 800, Reads: 800, Stats: 50,
		BytesWritten: 800 << 20, BytesRead: 800 << 20,
		SeqWrites: 800, SeqReads: 760, Shared: true,
	})
	spec.Files = append(spec.Files, TraceFile{
		Writes: 600, Reads: 600,
		BytesWritten: 600 << 16, BytesRead: 600 << 16,
		SeqWrites: 60, SeqReads: 60, Shared: true,
	})
	for i := 0; i < 20; i++ {
		spec.Files = append(spec.Files, TraceFile{
			Writes: 30, Reads: 30, Stats: 60, Unlinks: 1,
			BytesWritten: 30 << 13, BytesRead: 30 << 13,
			SeqWrites: 30, SeqReads: 30,
		})
	}
	return spec
}

// DarshanReplay is the catalog generator replaying CanonicalTrace.
func DarshanReplay(ranks int, scale float64) *Workload {
	return Replay(CanonicalTrace(), ranks, scale)
}

// Multitenant models interfering tenants sharing one cluster: ranks are
// partitioned into up to three tenants whose roles rotate each phase —
// streaming checkpoint writer, random small-I/O scanner, metadata churner —
// so every tenant experiences every kind of neighbour over the run's
// time-varying phases.
func Multitenant(ranks int, scale float64) *Workload {
	b := newBuilder("multitenant", "POSIX", ranks, scale)
	// Fixed-seed generator: tenant role rotation is part of the workload's
	// identity, not a randomized experiment factor.
	rng := rand.New(rand.NewSource(17))
	tenants := 3
	if tenants > ranks {
		tenants = ranks
	}
	members := make([][]int, tenants)
	for r := 0; r < ranks; r++ {
		t := r % tenants
		members[t] = append(members[t], r)
	}
	rootDir := b.addDir()
	churnDirs := make([]int32, tenants)
	for t := range churnDirs {
		churnDirs[t] = b.addDir()
	}

	const phases = 3
	streamPerRank := scaleCount(64, scale) // 1 MiB stream writes
	scanOps := scaleCount(96, scale)       // 64 KiB random reads/writes
	churnFiles := scaleCount(24, scale)    // create/stat/close/unlink cycles
	const streamSize = 1 << 20
	const scanSize = 64 << 10

	for p := 0; p < phases; p++ {
		b.phase(phaseNames[p])
		for t := 0; t < tenants; t++ {
			role := (t + p) % 3
			ranksOf := members[t]
			switch role {
			case 0: // streaming writer: shared checkpoint file, sequential
				f := b.addFile(rootDir, len(ranksOf) > 1)
				for _, r := range ranksOf {
					b.op(r, Op{Type: OpCreate, File: f, Dir: rootDir})
				}
				for i, r := range ranksOf {
					base := int64(i) * int64(streamPerRank) * streamSize
					for k := 0; k < streamPerRank; k++ {
						b.op(r, Op{Type: OpWrite, File: f,
							Offset: base + int64(k)*streamSize, Size: streamSize})
					}
				}
				for _, r := range ranksOf {
					b.op(r, Op{Type: OpFsync, File: f})
					b.op(r, Op{Type: OpClose, File: f})
				}
			case 1: // random scanner: shared scratch file, mixed read/write
				f := b.addFile(rootDir, len(ranksOf) > 1)
				span := int64(scanOps) * int64(len(ranksOf))
				for _, r := range ranksOf {
					b.op(r, Op{Type: OpCreate, File: f, Dir: rootDir})
					for k := 0; k < scanOps; k++ {
						off := rng.Int63n(span) * scanSize
						typ := OpWrite
						if k%2 == 1 {
							typ = OpRead
						}
						b.op(r, Op{Type: typ, File: f, Offset: off, Size: scanSize})
					}
					b.op(r, Op{Type: OpClose, File: f})
				}
			case 2: // metadata churner: per-rank file cycles in a tenant dir
				d := churnDirs[t]
				for _, r := range ranksOf {
					for k := 0; k < churnFiles; k++ {
						f := b.addFile(d, false)
						b.op(r, Op{Type: OpCreate, File: f, Dir: d, Index: int32(k)})
						b.op(r, Op{Type: OpWrite, File: f, Offset: 0, Size: 4 << 10})
						b.op(r, Op{Type: OpClose, File: f})
						b.op(r, Op{Type: OpStat, File: f, Dir: d, Index: int32(k)})
						b.op(r, Op{Type: OpUnlink, File: f, Dir: d, Index: int32(k)})
					}
					b.op(r, Op{Type: OpReaddir, Dir: d})
				}
			}
		}
		b.barrier()
	}
	return b.w
}

// phaseNames labels the multitenant role rotations for reporting.
var phaseNames = [...]string{"mix-0", "mix-1", "mix-2"}
