package rag

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"stellar/internal/llm"
	"stellar/internal/llm/simllm"
	"stellar/internal/manual"
	"stellar/internal/params"
	"stellar/internal/procfs"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("The osc.max_rpcs_in_flight parameter, set via lctl!")
	want := []string{"the", "osc.max_rpcs_in_flight", "parameter", "set", "via", "lctl"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v", toks)
		}
	}
}

func TestChunkTextOverlap(t *testing.T) {
	words := strings.Repeat("alpha beta gamma delta ", 600) // 2400 words
	chunks := ChunkText(words, 1024, 20)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	// Consecutive chunks share the overlap region.
	tail := strings.Fields(chunks[0].Text)
	head := strings.Fields(chunks[1].Text)
	for i := 0; i < 20; i++ {
		if tail[len(tail)-20+i] != head[i] {
			t.Fatal("overlap words do not match")
		}
	}
}

func TestChunkTextSmallInput(t *testing.T) {
	chunks := ChunkText("just a few words", 1024, 20)
	if len(chunks) != 1 || chunks[0].Text != "just a few words" {
		t.Fatalf("chunks = %+v", chunks)
	}
}

func TestEmbedderNormalised(t *testing.T) {
	emb := NewHashedTFIDF(128, []Chunk{{Text: "stripe count bandwidth"}, {Text: "metadata stat"}})
	v := emb.Embed("stripe bandwidth tuning")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm < 0.999 || norm > 1.001 {
		t.Fatalf("norm = %g", norm)
	}
	if emb.Dim() != 128 || len(v) != 128 {
		t.Fatal("dimension mismatch")
	}
}

// Property: a chunk is always most similar to itself.
func TestSelfSimilarityProperty(t *testing.T) {
	reg := params.Lustre()
	chunks := ChunkText(manual.FullText(reg), 256, 10)
	emb := NewHashedTFIDF(384, chunks)
	ix := NewIndex(emb, chunks)
	f := func(pick uint8) bool {
		c := chunks[int(pick)%len(chunks)]
		hits := ix.Search(c.Text, 1)
		return len(hits) == 1 && hits[0].Chunk.ID == c.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRetrievalFindsParameterSections(t *testing.T) {
	reg := params.Lustre()
	chunks := ChunkText(manual.FullText(reg), 1024, 20)
	emb := NewHashedTFIDF(384, chunks)
	ix := NewIndex(emb, chunks)
	for _, name := range params.TunableNames(reg) {
		hits := ix.Search(Query(name), 20)
		found := false
		for _, h := range hits {
			if strings.Contains(h.Chunk.Text, "Parameter "+name+".") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("top-20 retrieval missed the section for %s", name)
		}
	}
}

func TestExtractAllPipeline(t *testing.T) {
	reg := params.Lustre()
	chunks := ChunkText(manual.FullText(reg), 1024, 20)
	ix := NewIndex(NewHashedTFIDF(384, chunks), chunks)
	ex := &Extractor{Index: ix, Client: simllm.New(simllm.GPT4o), Model: simllm.GPT4o, TopK: 20}
	tree := procfs.New(reg)
	tunables, rep, err := ex.ExtractAll(context.Background(), tree)
	if err != nil {
		t.Fatal(err)
	}
	want := params.TunableNames(reg)
	if len(tunables) != len(want) {
		t.Fatalf("selected %d parameters, want %d: %v", len(tunables), len(want), rep.Selected)
	}
	byName := map[string]bool{}
	for _, p := range tunables {
		byName[p.Name] = true
		if p.Description == "" || p.Max == "" {
			t.Errorf("%s extracted without description or range", p.Name)
		}
	}
	for _, n := range want {
		if !byName[n] {
			t.Errorf("ground-truth tunable %s not selected", n)
		}
	}
	// Dependent range expressions must survive extraction verbatim enough
	// to evaluate.
	for _, p := range tunables {
		if p.Name == "llite.max_read_ahead_per_file_mb" {
			if _, err := params.EvalBound(p.Max, params.Env{"llite.max_read_ahead_mb": 64}); err != nil {
				t.Errorf("extracted dependent bound %q not evaluable: %v", p.Max, err)
			}
		}
	}
	// Binary parameters must be excluded with the right reason.
	foundChecksum := false
	for _, b := range rep.Binary {
		if b == "osc.checksums" {
			foundChecksum = true
		}
	}
	if !foundChecksum {
		t.Error("osc.checksums not excluded as binary")
	}
}

func TestExtractionUsesMeterSessions(t *testing.T) {
	reg := params.Lustre()
	chunks := ChunkText(manual.FullText(reg), 1024, 20)
	ix := NewIndex(NewHashedTFIDF(384, chunks), chunks)
	meter := llm.NewMeter(simllm.New(simllm.GPT4o))
	ex := &Extractor{Index: ix, Client: meter, Model: simllm.GPT4o, TopK: 20}
	if _, _, err := ex.ExtractAll(context.Background(), procfs.New(reg)); err != nil {
		t.Fatal(err)
	}
	if meter.SessionRequests("rag-judge") == 0 || meter.SessionUsage("rag-judge").InputTokens == 0 {
		t.Fatal("judge session not metered")
	}
}
