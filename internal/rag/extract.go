package rag

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"stellar/internal/llm"
	"stellar/internal/procfs"
	"stellar/internal/protocol"
)

// ExtractorReport summarises how the multistep filter narrowed the
// parameter set, matching the paper's pipeline stages.
type ExtractorReport struct {
	TotalParams       int
	Writable          int
	Insufficient      []string // filtered: documentation too thin
	Binary            []string // filtered: user trade-off switches
	NotSignificant    []string // filtered: documented but low impact
	Selected          []string
	ImportanceReasons map[string]string
}

// Extractor runs the offline RAG-based parameter extraction (§4.2.2).
type Extractor struct {
	Index  *Index
	Client llm.Client
	Model  string
	TopK   int // retrieved chunks per query (paper default 20)
}

// Query is the retrieval question template the paper uses.
func Query(param string) string {
	return fmt.Sprintf("How do I use the parameter %s?", param)
}

// ExtractAll walks the writable parameters of the procfs tree, retrieves
// manual context for each, and asks the judge model for a definition,
// impact statement, and valid range; then asks the importance assessor to
// keep only high-impact parameters. Binary parameters are excluded as user
// trade-offs.
func (e *Extractor) ExtractAll(ctx context.Context, tree *procfs.Tree) ([]*protocol.TunableParam, *ExtractorReport, error) {
	topK := e.TopK
	if topK <= 0 {
		topK = 20
	}
	rep := &ExtractorReport{ImportanceReasons: map[string]string{}}
	rep.TotalParams = len(tree.List())
	names := tree.WritableNames()
	rep.Writable = len(names)

	var out []*protocol.TunableParam
	for _, name := range names {
		j, err := e.judge(ctx, name, topK)
		if err != nil {
			return nil, nil, fmt.Errorf("rag: judging %s: %w", name, err)
		}
		if !j.Sufficient {
			rep.Insufficient = append(rep.Insufficient, name)
			continue
		}
		if j.Binary {
			rep.Binary = append(rep.Binary, name)
			continue
		}
		imp, err := e.important(ctx, name, j)
		if err != nil {
			return nil, nil, fmt.Errorf("rag: importance of %s: %w", name, err)
		}
		rep.ImportanceReasons[name] = imp.Reasoning
		if !imp.Significant {
			rep.NotSignificant = append(rep.NotSignificant, name)
			continue
		}
		cur, err := tree.Read(name)
		if err != nil {
			return nil, nil, err
		}
		def := j.Default
		if def == 0 {
			if v, perr := parseInt(cur); perr == nil {
				def = v
			}
		}
		out = append(out, &protocol.TunableParam{
			Name:        name,
			Description: j.Definition,
			Impact:      j.Impact,
			Min:         j.Min,
			Max:         j.Max,
			Default:     def,
		})
		rep.Selected = append(rep.Selected, name)
	}
	return out, rep, nil
}

// judge retrieves manual context for one parameter and asks the extraction
// judge whether the documentation suffices, and if so for the details.
func (e *Extractor) judge(ctx context.Context, name string, topK int) (*protocol.ExtractJudgment, error) {
	hits := e.Index.Search(Query(name), topK)
	var chunks strings.Builder
	for i, h := range hits {
		fmt.Fprintf(&chunks, "[chunk %d, score %.3f]\n%s\n\n", i+1, h.Score, h.Chunk.Text)
	}
	req := &llm.Request{
		Model:  e.Model,
		System: protocol.SysExtractJudge,
		Messages: []llm.Message{{
			Role: llm.RoleUser,
			Content: protocol.Section(protocol.SecParam, name) +
				protocol.Section(protocol.SecChunks, chunks.String()) +
				"Based only on the retrieved chunks, decide whether the documentation is " +
				"sufficient to define this parameter's purpose and valid range. If sufficient, " +
				"reply with JSON {sufficient, definition, impact, min, max, default, binary}; " +
				"min/max may be arithmetic expressions over other parameters or system facts. " +
				"If not, reply {\"sufficient\": false, \"reason\": ...}.",
		}},
	}
	resp, err := e.chat(ctx, req, "rag-judge")
	if err != nil {
		return nil, err
	}
	block, ok := protocol.FindJSONBlock(resp.Message.Content)
	if !ok {
		return nil, fmt.Errorf("judge returned no JSON: %q", resp.Message.Content)
	}
	var j protocol.ExtractJudgment
	if err := json.Unmarshal([]byte(block), &j); err != nil {
		return nil, fmt.Errorf("judge JSON invalid: %w", err)
	}
	return &j, nil
}

func (e *Extractor) important(ctx context.Context, name string, j *protocol.ExtractJudgment) (*protocol.ImportanceJudgment, error) {
	req := &llm.Request{
		Model:  e.Model,
		System: protocol.SysImportance,
		Messages: []llm.Message{{
			Role: llm.RoleUser,
			Content: protocol.Section(protocol.SecParam, name) +
				"Definition: " + j.Definition + "\nImpact: " + j.Impact + "\n\n" +
				"Decide, with documented reasoning, whether this parameter is likely to have " +
				"a significant impact on I/O performance. Reply with JSON " +
				"{significant, reasoning}.",
		}},
	}
	resp, err := e.chat(ctx, req, "rag-importance")
	if err != nil {
		return nil, err
	}
	block, ok := protocol.FindJSONBlock(resp.Message.Content)
	if !ok {
		return nil, fmt.Errorf("importance assessor returned no JSON: %q", resp.Message.Content)
	}
	var imp protocol.ImportanceJudgment
	if err := json.Unmarshal([]byte(block), &imp); err != nil {
		return nil, fmt.Errorf("importance JSON invalid: %w", err)
	}
	return &imp, nil
}

func (e *Extractor) chat(ctx context.Context, req *llm.Request, session string) (*llm.Response, error) {
	if m, ok := e.Client.(*llm.Meter); ok {
		return m.CompleteSession(ctx, session, req)
	}
	return e.Client.Complete(ctx, req)
}

func parseInt(s string) (int64, error) {
	var v int64
	_, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v)
	return v, err
}
