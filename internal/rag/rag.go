// Package rag implements STELLAR's retrieval-augmented generation pipeline
// (§4.2): chunking the file system manual, embedding chunks into a vector
// index, retrieving the most relevant chunks per query, and driving the
// LLM-based parameter extraction and importance filtering.
//
// The embedder is a hashed TF-IDF bag-of-words model — an offline,
// deterministic stand-in for the paper's text-embedding-3-large — behind
// the Embedder interface.
package rag

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Tokenize lowercases and splits text into word tokens.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '.'
	})
}

// Chunk is one indexed piece of the manual.
type Chunk struct {
	ID   int
	Text string
}

// ChunkText splits text into chunks of at most chunkTokens tokens with the
// given token overlap, following the paper's LlamaIndex defaults (1024
// tokens, 20 overlap). Chunk boundaries respect token boundaries but not
// sentence structure, as token-window chunkers do.
func ChunkText(text string, chunkTokens, overlap int) []Chunk {
	if chunkTokens <= 0 {
		chunkTokens = 1024
	}
	if overlap >= chunkTokens {
		overlap = chunkTokens / 2
	}
	words := strings.Fields(text)
	var chunks []Chunk
	step := chunkTokens - overlap
	for start := 0; start < len(words); start += step {
		end := start + chunkTokens
		if end > len(words) {
			end = len(words)
		}
		chunks = append(chunks, Chunk{ID: len(chunks), Text: strings.Join(words[start:end], " ")})
		if end == len(words) {
			break
		}
	}
	return chunks
}

// Embedder turns text into a fixed-dimension vector.
type Embedder interface {
	Embed(text string) []float32
	Dim() int
}

// HashedTFIDF embeds text as an L2-normalised hashed bag of words weighted
// by corpus IDF. It is deterministic and needs no model weights.
type HashedTFIDF struct {
	dim int
	idf map[string]float64
}

// NewHashedTFIDF fits IDF weights over the given corpus of chunks.
func NewHashedTFIDF(dim int, corpus []Chunk) *HashedTFIDF {
	if dim <= 0 {
		dim = 384
	}
	df := map[string]int{}
	for _, c := range corpus {
		seen := map[string]bool{}
		for _, t := range Tokenize(c.Text) {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	n := float64(len(corpus)) + 1
	idf := make(map[string]float64, len(df))
	for t, d := range df {
		idf[t] = math.Log(n / (1 + float64(d)))
	}
	return &HashedTFIDF{dim: dim, idf: idf}
}

// Dim returns the vector dimension.
func (h *HashedTFIDF) Dim() int { return h.dim }

// Embed implements Embedder.
func (h *HashedTFIDF) Embed(text string) []float32 {
	vec := make([]float32, h.dim)
	for _, t := range Tokenize(text) {
		w := h.idf[t]
		if w == 0 {
			w = 1.0 // unseen terms get neutral weight
		}
		slot := hashToken(t) % uint64(h.dim)
		sign := float32(1)
		if hashToken(t+"#")&1 == 1 {
			sign = -1
		}
		vec[slot] += sign * float32(w)
	}
	normalize(vec)
	return vec
}

func hashToken(t string) uint64 {
	// FNV-1a
	var h uint64 = 1469598103934665603
	for i := 0; i < len(t); i++ {
		h ^= uint64(t[i])
		h *= 1099511628211
	}
	return h
}

func normalize(v []float32) {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	if s == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(s))
	for i := range v {
		v[i] *= inv
	}
}

// Cosine computes cosine similarity of two normalised vectors.
func Cosine(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Hit is one retrieval result.
type Hit struct {
	Chunk Chunk
	Score float64
}

// Index is the queryable vector database over manual chunks.
type Index struct {
	emb    Embedder
	chunks []Chunk
	vecs   [][]float32
}

// NewIndex embeds all chunks.
func NewIndex(emb Embedder, chunks []Chunk) *Index {
	ix := &Index{emb: emb, chunks: chunks}
	for _, c := range chunks {
		ix.vecs = append(ix.vecs, emb.Embed(c.Text))
	}
	return ix
}

// Len returns the number of indexed chunks.
func (ix *Index) Len() int { return len(ix.chunks) }

// Search returns the top-k chunks by cosine similarity to the query.
func (ix *Index) Search(query string, k int) []Hit {
	qv := ix.emb.Embed(query)
	hits := make([]Hit, 0, len(ix.chunks))
	for i, c := range ix.chunks {
		hits = append(hits, Hit{Chunk: c, Score: Cosine(qv, ix.vecs[i])})
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}
