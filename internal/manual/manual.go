// Package manual generates the synthetic Lustre Operations Manual the RAG
// pipeline indexes. Parameter sections are derived from the ground-truth
// registry (definition, I/O impact, valid range, default); general chapters
// provide realistic retrieval noise. Parameters graded DocThin get only a
// vague mention; DocNone parameters never appear — so the extraction
// pipeline's sufficiency filter has genuine work to do.
package manual

import (
	"fmt"
	"strings"

	"stellar/internal/params"
)

// Section is one titled unit of the manual.
type Section struct {
	Title string
	Body  string
}

// Generate builds the full manual for a registry.
func Generate(reg *params.Registry) []Section {
	var out []Section
	out = append(out, generalChapters()...)
	for _, p := range reg.All() {
		switch p.Doc {
		case params.DocFull:
			out = append(out, fullSection(p))
		case params.DocThin:
			out = append(out, thinSection(p))
		}
	}
	out = append(out, appendixChapters()...)
	return out
}

// FullText concatenates the manual for chunking.
func FullText(reg *params.Registry) string {
	var b strings.Builder
	b.WriteString("Lustre Software Release 2.x Operations Manual (simulated edition)\n\n")
	for _, s := range Generate(reg) {
		fmt.Fprintf(&b, "Section: %s\n\n%s\n\n", s.Title, s.Body)
	}
	return b.String()
}

func fullSection(p *params.Param) Section {
	var b strings.Builder
	fmt.Fprintf(&b, "Parameter %s.\n", p.Name)
	fmt.Fprintf(&b, "%s %s\n", p.Definition, p.Impact)
	if p.Binary {
		fmt.Fprintf(&b, "The parameter %s is a binary switch. The valid range is 0 to 1. The default value is %d.\n",
			p.Name, p.Default)
	} else {
		fmt.Fprintf(&b, "The valid range of %s is %s. The default value is %d",
			p.Name, p.RangeText(), p.Default)
		if p.Unit != "" {
			fmt.Fprintf(&b, " %s", p.Unit)
		}
		b.WriteString(".\n")
	}
	fmt.Fprintf(&b, "To change the value at runtime, write to %s with lctl set_param.\n", p.Path)
	return Section{Title: "Tuning " + p.Name, Body: b.String()}
}

func thinSection(p *params.Param) Section {
	body := fmt.Sprintf(
		"The parameter %s exists under %s. %s Consult support before modifying this setting.\n",
		p.Name, p.Path, p.Definition)
	return Section{Title: "Notes on " + p.Name, Body: body}
}

func generalChapters() []Section {
	return []Section{
		{"Introduction to the Lustre Architecture", `Lustre is an object-based, parallel
file system composed of metadata servers (MDS), object storage servers (OSS)
hosting object storage targets (OSTs), and clients. Clients communicate with
servers over RPCs carried by the LNet transport. File metadata lives on the
MDS while file data is striped across one or more OSTs according to the
file layout. The llite layer implements the client VFS interface, the lov
layer implements striping, the osc layer manages object storage client
state per OST, and the mdc layer manages the metadata client connection.`},
		{"Understanding File Striping", `Every Lustre file has a layout describing how its
data is distributed across OSTs. The layout is fixed when the file is
created and is controlled by the stripe count and stripe size settings of
the file or its parent directory. Striping a large file across several OSTs
lets many servers serve it concurrently; striping a small file widely only
adds object-allocation overhead at creation time. Administrators commonly
set layouts per directory with lfs setstripe.`},
		{"Client I/O Path", `Writes enter the client page cache, are aggregated into bulk
RPCs, and are written back asynchronously by OSC write-back threads. Reads
consult the page cache, may trigger read-ahead for detected sequential
streams, and otherwise fetch data synchronously. Metadata operations travel
through the MDC to the MDS. The number of concurrent RPCs per target and
the size of each bulk RPC are the primary levers over pipeline depth.`},
		{"Network Request Scheduler (NRS)", `The network request scheduler on each server
orders incoming RPCs according to the active policy. Policies include FIFO,
client round-robin (CRR), object-based round-robin (ORR), and the delay
policy used for fault and load testing. The delay policy holds back a
configurable percentage of requests for a configurable time to simulate a
loaded or degraded server; it is not intended for production tuning.`},
		{"Benchmarking Recommendations", `Before tuning, establish a baseline with a
representative workload and record the achieved bandwidth and metadata
rates. Change one group of related parameters at a time, rerun, and keep
notes: many parameters interact, and a setting that helps one workload can
hurt another. Always restore defaults before benchmarking a new proposal.`},
		{"Lock Management (LDLM)", `The Lustre distributed lock manager grants clients
locks protecting cached data and attributes. Locks not in active use are
kept in a least-recently-used list per namespace and cancelled when the
list overflows or entries age out. Lock cache behaviour is controlled by
the ldlm namespace parameters.`},
		{"Metadata Performance", `Metadata-heavy workloads — many small files, deep
directory trees, or stat-heavy scans — stress the MDS rather than the OSTs.
Client-side windows bound the number of concurrent metadata requests, and
the statahead mechanism prefetches attributes during directory traversals.
Creating files in a single shared directory serialises on the directory
lock; spreading work across directories restores parallelism.`},
		{"Checksums and Data Integrity", `Lustre can checksum bulk data on the wire to
detect corruption between client and OST. Checksumming consumes CPU on both
ends and reduces peak bandwidth by roughly ten to twenty percent depending
on the processor. Sites choose the trade-off according to their integrity
requirements; performance tooling must not silently change it.`},
	}
}

func appendixChapters() []Section {
	return []Section{
		{"Appendix: Installing Lustre", `Installation requires matching kernel and
Lustre module versions on servers and clients. Format OSTs and the MDT with
mkfs.lustre, specifying the management node, then mount the targets. The
file system block size and mount point are fixed at format and mount time
respectively and cannot be changed at runtime.`},
		{"Appendix: Monitoring", `Per-target statistics are exported under /proc/fs/lustre
and /sys/fs/lustre. The stats files report RPC counts and latencies;
brw_stats histograms bulk I/O sizes; jobstats attributes server load to
scheduler jobs. Monitoring tools sample these counters without affecting
the I/O path.`},
		{"Appendix: Troubleshooting Slow I/O", `Slow I/O usually traces to one of four
causes: a workload striped onto too few OSTs, shallow RPC pipelines leaving
servers idle between requests, small unaligned accesses defeating the page
cache, or a saturated MDS serialising metadata. Darshan or similar tracing
tools identify which pattern an application exhibits; tune the matching
parameter group rather than guessing.`},
	}
}
