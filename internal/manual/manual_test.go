package manual

import (
	"strings"
	"testing"

	"stellar/internal/params"
)

func TestGenerateCoverage(t *testing.T) {
	reg := params.Lustre()
	sections := Generate(reg)
	text := FullText(reg)

	for _, p := range reg.All() {
		mentioned := strings.Contains(text, p.Name)
		switch p.Doc {
		case params.DocNone:
			// DocNone parameters never get their own section; the marker
			// sentence must be absent.
			if strings.Contains(text, "Parameter "+p.Name+".") {
				t.Errorf("%s has a section despite DocNone", p.Name)
			}
		case params.DocThin:
			if !mentioned {
				t.Errorf("%s (DocThin) not mentioned at all", p.Name)
			}
			if strings.Contains(text, "The valid range of "+p.Name) {
				t.Errorf("%s (DocThin) documents a range", p.Name)
			}
		case params.DocFull:
			if !strings.Contains(text, "Parameter "+p.Name+".") {
				t.Errorf("%s (DocFull) lacks its section", p.Name)
			}
			if !p.Binary && !strings.Contains(text, "The valid range of "+p.Name+" is "+p.RangeText()) {
				t.Errorf("%s (DocFull) lacks its range sentence", p.Name)
			}
		}
	}
	if len(sections) < 20 {
		t.Fatalf("manual too small: %d sections", len(sections))
	}
}

func TestBinarySectionsMarked(t *testing.T) {
	reg := params.Lustre()
	text := FullText(reg)
	if !strings.Contains(text, "The parameter osc.checksums is a binary switch.") {
		t.Fatal("binary marker sentence missing for osc.checksums")
	}
}

func TestGeneralChaptersPresent(t *testing.T) {
	text := FullText(params.Lustre())
	for _, want := range []string{
		"Introduction to the Lustre Architecture",
		"Understanding File Striping",
		"Network Request Scheduler",
		"Appendix: Troubleshooting Slow I/O",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing chapter %q", want)
		}
	}
}
