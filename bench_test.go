// Package stellar's root benchmark harness: one testing.B benchmark per
// paper table/figure (regenerating the artifact each iteration) plus
// substrate micro-benchmarks and the parallel-vs-serial evaluation
// comparison. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use a reduced workload scale and repetition count so a full
// sweep stays in the minutes; `go run ./cmd/stellar-bench` runs the
// full-scale versions and prints the tables.
package stellar

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"stellar/internal/cluster"
	"stellar/internal/core"
	"stellar/internal/experiments"
	"stellar/internal/llm/simllm"
	"stellar/internal/lustre"
	"stellar/internal/manual"
	"stellar/internal/params"
	"stellar/internal/platform"
	"stellar/internal/rag"
	"stellar/internal/runcache"
	"stellar/internal/search"
	"stellar/internal/server"
	"stellar/internal/sim"
	"stellar/internal/workload"
)

// reportEvents attaches kernel throughput to a benchmark that drives the
// simulator: discrete events fired per wall-clock second over the timed
// section, measured from the process-wide counter. Call with sim.TotalFired()
// captured right after b.ResetTimer.
func reportEvents(b *testing.B, start uint64) {
	b.Helper()
	if d := sim.TotalFired() - start; d > 0 {
		b.ReportMetric(float64(d)/b.Elapsed().Seconds(), "events/sec")
	}
}

// benchCfg keeps each figure regeneration fast enough to iterate.
func benchCfg() experiments.Config {
	return experiments.Config{Reps: 3, Scale: 0.1, Seed: 7}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkFig2Hallucination regenerates Figure 2 (parameter facts with and
// without RAG grounding).
func BenchmarkFig2Hallucination(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig5TuningPerformance regenerates Figure 5 (default vs expert vs
// STELLAR wall times across the five benchmarks).
func BenchmarkFig5TuningPerformance(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6RuleSetInterpolation regenerates Figure 6 (per-iteration
// speedups with and without the global rule set).
func BenchmarkFig6RuleSetInterpolation(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7RuleSetExtrapolation regenerates Figure 7 (real applications
// tuned with benchmark-learned rules).
func BenchmarkFig7RuleSetExtrapolation(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Ablation regenerates Figure 8 (No Descriptions / No Analysis
// ablations on MDWorkbench_8K).
func BenchmarkFig8Ablation(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9ModelComparison regenerates Figure 9 (three models as the
// Tuning Agent on IOR_16M).
func BenchmarkFig9ModelComparison(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkCostTable regenerates the §5.7 token-usage table.
func BenchmarkCostTable(b *testing.B) { runExperiment(b, "cost") }

// BenchmarkIterationCost regenerates the iteration-cost comparison against
// traditional autotuners.
func BenchmarkIterationCost(b *testing.B) { runExperiment(b, "iters") }

// BenchmarkFig10CaseStudy regenerates the Figure 10 tuning timeline.
func BenchmarkFig10CaseStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Fig10CaseStudy(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty case study")
		}
	}
}

// ----------------------------------------------------------------------
// Parallel vs serial evaluation.
// ----------------------------------------------------------------------

// benchEvaluate measures Engine.Evaluate at the paper's eight-rep protocol
// with the given worker-pool size. Compare BenchmarkEvaluateSerial with
// BenchmarkEvaluateParallel: on a multi-core box the parallel variant's
// wall-clock scales down with cores while producing bit-identical
// summaries (determinism is asserted in internal/core's tests).
func benchEvaluate(b *testing.B, parallel int) {
	b.Helper()
	eng := core.New(simllm.New(simllm.GPT4o), core.Options{
		Spec: cluster.Default(), TuningModel: simllm.Claude37,
		AnalysisModel: simllm.GPT4o, ExtractModel: simllm.GPT4o,
		Scale: 0.25, Parallel: parallel,
	})
	cfg := params.DefaultConfig(eng.Registry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(context.Background(), "IOR_16M", cfg, 8, 99); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateSerial is the strict serial reference path.
func BenchmarkEvaluateSerial(b *testing.B) { benchEvaluate(b, 1) }

// BenchmarkEvaluateParallel fans the eight repetitions over all cores.
func BenchmarkEvaluateParallel(b *testing.B) { benchEvaluate(b, runtime.GOMAXPROCS(0)) }

// benchEvaluateWithPlatform measures repeated Evaluate calls on the same
// configuration — the figure drivers' baseline pattern — against the given
// platform backend.
func benchEvaluateWithPlatform(b *testing.B, p platform.Platform) {
	b.Helper()
	eng := core.New(simllm.New(simllm.GPT4o), core.Options{
		Spec: cluster.Default(), TuningModel: simllm.Claude37,
		AnalysisModel: simllm.GPT4o, ExtractModel: simllm.GPT4o,
		Scale: 0.25, Platform: p,
	})
	cfg := params.DefaultConfig(eng.Registry())
	b.ReportAllocs()
	b.ResetTimer()
	start := sim.TotalFired()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(context.Background(), "IOR_16M", cfg, 8, 99); err != nil {
			b.Fatal(err)
		}
	}
	reportEvents(b, start)
}

// BenchmarkEvaluateUncached re-simulates the eight repetitions on every
// Evaluate call — what every baseline measurement paid before the run
// cache.
func BenchmarkEvaluateUncached(b *testing.B) {
	benchEvaluateWithPlatform(b, platform.Simulator{})
}

// BenchmarkEvaluateBatch drives Engine.EvaluateBatch directly: one workload
// build and one pooled procfs snapshot shared across the eight repetitions,
// the path /v1/evaluate, /v1/sweeps, and /v1/tune all sit on. Compare with
// BenchmarkEvaluateUncached (same simulations through the public Evaluate
// wrapper) — the per-rep walls are bit-identical by construction, asserted
// in internal/core's batch test.
func BenchmarkEvaluateBatch(b *testing.B) {
	eng := core.New(simllm.New(simllm.GPT4o), core.Options{
		Spec: cluster.Default(), TuningModel: simllm.Claude37,
		AnalysisModel: simllm.GPT4o, ExtractModel: simllm.GPT4o,
		Scale: 0.25, Platform: platform.Simulator{},
	})
	cfg := params.DefaultConfig(eng.Registry())
	b.ReportAllocs()
	b.ResetTimer()
	start := sim.TotalFired()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.EvaluateBatch(context.Background(), "IOR_16M", cfg, 8, 99); err != nil {
			b.Fatal(err)
		}
	}
	reportEvents(b, start)
}

// BenchmarkEvaluateCached serves repeated configurations from the
// content-addressed run cache: after the first iteration every trial is a
// hit, so per-iteration cost collapses to hashing the RunSpec. Compare with
// BenchmarkEvaluateUncached for the figure-regeneration dedup win.
func BenchmarkEvaluateCached(b *testing.B) {
	benchEvaluateWithPlatform(b, runcache.New(platform.Simulator{}, 0))
}

// BenchmarkServeEvaluate measures tuning-as-a-service throughput: repeated
// identical HTTP evaluate requests against an in-process stellar-serve
// handler. After the first iteration every trial is a cache hit, so this is
// the steady-state serving cost — HTTP round trip + content-addressed key
// hash + LRU lookup — to compare against BenchmarkEvaluateCached (the same
// dedup without the HTTP layer) and BenchmarkEvaluateUncached. stellar-bench
// -serve-requests N records the same measurement into BENCH_*.json.
func BenchmarkServeEvaluate(b *testing.B) {
	srv, err := server.New(server.Options{Scale: 0.25, Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := `{"workload":"IOR_16M","reps":8,"seed":99}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
	}
}

// benchServeConcurrent is BenchmarkServeEvaluate under 16-way client
// concurrency: 16 goroutines fire identical evaluate requests at one
// in-process server, so after warm-up every request is a cache lookup and
// the benchmark measures lock contention on the shared cache itself.
func benchServeConcurrent(b *testing.B, shards int) {
	b.Helper()
	srv, err := server.New(server.Options{
		Scale: 0.25, Workers: 32, Backlog: 64, CacheShards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := `{"workload":"IOR_16M","reps":8,"seed":99}`
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		return nil
	}
	if err := post(); err != nil { // warm the cache outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				errs[g] = post()
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServeEvaluateConcurrent is the sharded cache under the server's
// 16-way fan-out; compare with BenchmarkServeEvaluateConcurrentSingleShard
// (the old single-mutex layout) to see what sharding buys under contention.
func BenchmarkServeEvaluateConcurrent(b *testing.B) { benchServeConcurrent(b, 0) }

// BenchmarkServeEvaluateConcurrentSingleShard forces every key onto one
// mutex — the pre-sharding baseline the sharded cache must never lose to.
func BenchmarkServeEvaluateConcurrentSingleShard(b *testing.B) { benchServeConcurrent(b, 1) }

// BenchmarkFig8AblationParallel regenerates Figure 8 with its three
// independent arms fanned over the worker pool, the experiment-level
// counterpart to BenchmarkEvaluateParallel.
func BenchmarkFig8AblationParallel(b *testing.B) {
	e, ok := experiments.Lookup("fig8")
	if !ok {
		b.Fatal("fig8 experiment missing")
	}
	cfg := benchCfg()
	cfg.Parallel = runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------------------------
// Substrate micro-benchmarks.
// ----------------------------------------------------------------------

// BenchmarkSimulatorIOR16M measures one simulated IOR_16M execution.
func BenchmarkSimulatorIOR16M(b *testing.B) {
	spec := cluster.Default()
	w := workload.IOR16M(spec.TotalRanks(), 0.25)
	cfg := params.DefaultConfig(params.Lustre())
	b.ReportAllocs()
	b.ResetTimer()
	start := sim.TotalFired()
	for i := 0; i < b.N; i++ {
		if _, err := lustre.Run(context.Background(), w, lustre.Options{Spec: spec, Config: cfg, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	reportEvents(b, start)
}

// BenchmarkSimulatorMDWorkbench measures one simulated MDWorkbench_8K
// execution (the metadata-heavy event-count worst case).
func BenchmarkSimulatorMDWorkbench(b *testing.B) {
	spec := cluster.Default()
	w := workload.MDWorkbench8K(spec.TotalRanks(), 0.1)
	cfg := params.DefaultConfig(params.Lustre())
	b.ReportAllocs()
	b.ResetTimer()
	start := sim.TotalFired()
	for i := 0; i < b.N; i++ {
		if _, err := lustre.Run(context.Background(), w, lustre.Options{Spec: spec, Config: cfg, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	reportEvents(b, start)
}

// BenchmarkRAGIndexBuild measures chunking plus embedding of the manual.
func BenchmarkRAGIndexBuild(b *testing.B) {
	text := manual.FullText(params.Lustre())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks := rag.ChunkText(text, 1024, 20)
		rag.NewIndex(rag.NewHashedTFIDF(384, chunks), chunks)
	}
}

// BenchmarkOfflineExtraction measures the complete offline phase.
func BenchmarkOfflineExtraction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := core.New(simllm.New(simllm.GPT4o), core.Options{
			Spec: cluster.Default(), TuningModel: simllm.Claude37,
			AnalysisModel: simllm.GPT4o, ExtractModel: simllm.GPT4o,
		})
		if _, err := eng.Offline(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompleteTuningRun measures one end-to-end tuning run (IOR_16M).
func BenchmarkCompleteTuningRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := core.New(simllm.New(simllm.GPT4o), core.Options{
			Spec: cluster.Default(), TuningModel: simllm.Claude37,
			AnalysisModel: simllm.GPT4o, ExtractModel: simllm.GPT4o,
			Scale: 0.1, Seed: int64(i + 1),
		})
		if _, err := eng.Tune(context.Background(), "IOR_16M"); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTuneSearch runs the adaptive successive-halving search end to end
// over the given platform stack.
func benchTuneSearch(b *testing.B, plat platform.Platform) {
	b.Helper()
	eng := core.New(simllm.New(simllm.GPT4o), core.Options{
		Spec: cluster.Default(), Scale: 0.1, Seed: 7, Parallel: 4, Platform: plat,
	})
	opts := search.Options{
		Workload: "IOR_16M", Candidates: 8, MaxReps: 3, Seed: 7, Parallel: 4,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Run(context.Background(), eng.EvaluateSeries, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuneSearchUncached pays every candidate evaluation on the live
// simulator — including re-measuring survivors' earlier repetitions each
// time their precision doubles.
func BenchmarkTuneSearchUncached(b *testing.B) {
	benchTuneSearch(b, platform.Simulator{})
}

// BenchmarkTuneSearchCached runs the same search over the run cache:
// survivor promotions re-request runs earlier rounds already paid for, so
// only genuinely new (config, seed) trials simulate — and after the first
// iteration the whole search is served from memory. Compare with
// BenchmarkTuneSearchUncached for the cache-aware early-stopping win.
func BenchmarkTuneSearchCached(b *testing.B) {
	benchTuneSearch(b, runcache.New(platform.Simulator{}, 0))
}
