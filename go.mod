module stellar

go 1.24
