module stellar

go 1.23
