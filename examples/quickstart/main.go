// Quickstart: tune a single workload end to end with STELLAR and print the
// iteration history, the best configuration, and the learned rules.
package main

import (
	"context"
	"fmt"
	"log"

	"stellar/internal/cluster"
	"stellar/internal/core"
	"stellar/internal/llm/simllm"
)

func main() {
	ctx := context.Background()

	// The LLM backend. Offline this is the deterministic expert-policy
	// model suite; swap in httpllm.New("https://api.openai.com/v1", key)
	// to drive a real endpoint with identical prompts.
	backend := simllm.New(simllm.GPT4o)

	eng := core.New(backend, core.Options{
		Spec:          cluster.Default(), // the paper's 10-node CloudLab testbed
		TuningModel:   simllm.Claude37,   // Tuning Agent model
		AnalysisModel: simllm.GPT4o,      // Analysis Agent model
		ExtractModel:  simllm.GPT4o,      // RAG extraction model
	})

	// Offline phase: extract tunable parameters from the manual via RAG.
	report, err := eng.Offline(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline phase selected %d tunable parameters\n", len(report.Selected))

	// Online phase: one complete tuning run.
	res, err := eng.Tune(ctx, "IOR_16M")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntuning IOR_16M finished after %d attempts: %s\n",
		len(res.History)-1, res.EndReason)
	for i, sp := range res.Speedups() {
		fmt.Printf("  iteration %d: x%.2f\n", i, sp)
	}
	fmt.Println("\nbest configuration:")
	for _, k := range res.BestCfg.Names() {
		fmt.Printf("  %s = %d\n", k, res.BestCfg[k])
	}
	fmt.Printf("\naccumulated rules: %d\n", eng.Rules().Len())
}
