// Ablation: reproduce the paper's §5.4 component study interactively —
// run MDWorkbench_8K tuning with the full system, without RAG parameter
// descriptions, and without the Analysis Agent, and compare outcomes.
package main

import (
	"context"
	"fmt"
	"log"

	"stellar/internal/cluster"
	"stellar/internal/core"
	"stellar/internal/llm/simllm"
)

func main() {
	ctx := context.Background()
	variants := []struct {
		label            string
		noDescs, noAnaly bool
	}{
		{"full STELLAR", false, false},
		{"no descriptions", true, false},
		{"no analysis", false, true},
	}
	for _, v := range variants {
		eng := core.New(simllm.New(simllm.GPT4o), core.Options{
			Spec:                cluster.Default(),
			TuningModel:         simllm.Claude37,
			AnalysisModel:       simllm.GPT4o,
			ExtractModel:        simllm.GPT4o,
			DisableDescriptions: v.noDescs,
			DisableAnalysis:     v.noAnaly,
		})
		res, err := eng.Tune(ctx, "MDWorkbench_8K")
		if err != nil {
			log.Fatal(err)
		}
		best := 0.0
		for _, sp := range res.Speedups() {
			if sp > best {
				best = sp
			}
		}
		fmt.Printf("%-16s best x%.2f over %d attempts  (%s)\n",
			v.label, best, len(res.History)-1, trim(res.EndReason, 70))
	}
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
