// Rule-set transfer: learn tuning rules on cheap benchmarks, then apply
// them to a previously unseen application (the paper's §5.3 scenario). The
// printout contrasts the first-guess quality with and without rules.
package main

import (
	"context"
	"fmt"
	"log"

	"stellar/internal/cluster"
	"stellar/internal/core"
	"stellar/internal/llm/simllm"
	"stellar/internal/rules"
)

func newEngine() *core.Engine {
	return core.New(simllm.New(simllm.GPT4o), core.Options{
		Spec:          cluster.Default(),
		TuningModel:   simllm.Claude37,
		AnalysisModel: simllm.GPT4o,
		ExtractModel:  simllm.GPT4o,
	})
}

func main() {
	ctx := context.Background()

	// Phase 1: accumulate knowledge on the benchmarks.
	teacher := newEngine()
	for _, b := range []string{"IOR_64K", "IOR_16M", "MDWorkbench_8K"} {
		if _, err := teacher.Tune(ctx, b); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("learned from %-16s -> %d rules in the global set\n", b, teacher.Rules().Len())
	}
	learned := teacher.Rules().JSON()

	// Phase 2: a previously unseen real application, without rules...
	fresh := newEngine()
	without, err := fresh.Tune(ctx, "MACSio_16M")
	if err != nil {
		log.Fatal(err)
	}

	// ... and with the benchmark-learned rule set.
	informed := newEngine()
	set, err := rules.Parse(learned)
	if err != nil {
		log.Fatal(err)
	}
	informed.SetRules(set)
	with, err := informed.Tune(ctx, "MACSio_16M")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nMACSio_16M (unseen application):")
	fmt.Printf("  without rules: speedups %v\n", fmt2(without.Speedups()))
	fmt.Printf("  with rules:    speedups %v\n", fmt2(with.Speedups()))
}

func fmt2(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("x%.2f", x)
	}
	return out
}
