// Custom workload: build your own I/O pattern with the workload package,
// run it on the simulated Lustre cluster under different configurations,
// and inspect its Darshan characterisation — the substrate API a
// downstream user starts from before involving the agents.
package main

import (
	"context"

	"fmt"
	"log"

	"stellar/internal/cluster"
	"stellar/internal/darshan"
	"stellar/internal/lustre"
	"stellar/internal/params"
	"stellar/internal/workload"
)

func main() {
	spec := cluster.Default()

	// A checkpoint-style pattern: every rank appends 4 MiB records to a
	// shared checkpoint file, fsyncs, then a quarter of the ranks read the
	// file back for validation.
	w := workload.IOR(workload.IORSpec{
		Ranks:        spec.TotalRanks(),
		TransferSize: 4 << 20,
		BlockSize:    64 << 20,
		Blocks:       1,
		Random:       false,
		ReadBack:     true,
		Seed:         99,
	}, 0.25)
	w.Name = "checkpoint"

	reg := params.Lustre()
	configs := map[string]params.Config{
		"default": params.DefaultConfig(reg),
		"striped": withOverrides(reg, map[string]int64{
			"lov.stripe_count":       -1,
			"lov.stripe_size":        4 << 20,
			"osc.max_rpcs_in_flight": 32,
			"osc.max_pages_per_rpc":  1024,
			"osc.max_dirty_mb":       1024,
		}),
	}

	for _, name := range []string{"default", "striped"} {
		collector := darshan.NewCollector(w.Interface)
		res, err := lustre.Run(context.Background(), w, lustre.Options{
			Spec: spec, Config: configs[name], Seed: 42, Trace: collector,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s wall %7.3f s   data RPCs %6d   meta RPCs %5d\n",
			name, res.WallTime, res.DataRPCs, res.MetaRPCs)

		if name == "default" {
			dlog := collector.Log("1", w.Name, w.NumRanks())
			fmt.Println("\nDarshan characterisation (default run):")
			fmt.Println(dlog.HeaderText())
			frames := dlog.Frames()
			posix := frames["POSIX"]
			written, _ := posix.Aggregate("POSIX_BYTES_WRITTEN", "sum")
			read, _ := posix.Aggregate("POSIX_BYTES_READ", "sum")
			fmt.Printf("bytes written: %.0f, bytes read: %.0f\n\n", written, read)
		}
	}
}

func withOverrides(reg *params.Registry, over map[string]int64) params.Config {
	cfg := params.DefaultConfig(reg)
	for k, v := range over {
		cfg[k] = v
	}
	return cfg
}
